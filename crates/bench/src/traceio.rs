//! Reading exported event streams back into typed [`Event`]s.
//!
//! The bench binaries export JSONL via [`dvc_sim_core::JsonlSink`]
//! (`EVENTS_E3.jsonl`, `EVENTS_E13.jsonl`); `dvc-trace` consumes those
//! files. This module reconstructs the subset of events the trace tools
//! need — span boundaries, the LSC round lifecycle, storage retries and
//! control-plane faults — so the files can be replayed straight into the
//! [`dvc_sim_core::EventSink`] analyzers ([`dvc_sim_core::SpanChecker`],
//! [`dvc_sim_core::PhaseAttribution`], [`dvc_sim_core::PerfettoTrace`])
//! instead of growing a parallel half-typed representation.
//!
//! The JSONL format is flat (every value numeric, boolean, or a registry
//! identifier; one object per line), so extraction is plain string
//! scanning — no JSON dependency. Lines with recognized keys but missing
//! fields, or span names outside [`dvc_sim_core::SPAN_NAMES`], are
//! malformed-stream errors; lines with keys the tools don't consume are
//! skipped.

use dvc_sim_core::{
    name_from_str, Event, FaultEvent, LscEvent, SimDuration, SimTime, SpanEvent, StorageEvent,
};

/// Find `"name":` in a flat JSON object line and return the raw value text
/// (up to the next `,` or `}`), unquoted if it was a string.
fn field_raw<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        return Some(&stripped[..end]);
    }
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn field_u64(line: &str, name: &str) -> Option<u64> {
    field_raw(line, name)?.parse().ok()
}

fn field_u32(line: &str, name: &str) -> Option<u32> {
    field_raw(line, name)?.parse().ok()
}

fn field_bool(line: &str, name: &str) -> Option<bool> {
    match field_raw(line, name)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Parse one JSONL line. `Ok(Some(..))` for events the trace tools
/// consume, `Ok(None)` for valid lines with other keys, `Err` for
/// malformed input (no timestamp/key, missing fields on a known key, or an
/// unregistered span name).
pub fn parse_line(line: &str) -> Result<Option<(SimTime, Event)>, String> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let t = field_u64(line, "t").ok_or_else(|| format!("no \"t\" field: {line}"))?;
    let key = field_raw(line, "key").ok_or_else(|| format!("no \"key\" field: {line}"))?;
    let t = SimTime(t);
    let missing = |f: &str| format!("key {key}: missing \"{f}\": {line}");
    let ev = match key {
        "span.open" => {
            let name = field_raw(line, "name").ok_or_else(|| missing("name"))?;
            let name =
                name_from_str(name).ok_or_else(|| format!("unregistered span name: {name}"))?;
            Event::Span(SpanEvent::Open {
                id: field_u64(line, "id").ok_or_else(|| missing("id"))?,
                parent: field_u64(line, "parent").ok_or_else(|| missing("parent"))?,
                name,
                arg: field_u64(line, "arg").ok_or_else(|| missing("arg"))?,
            })
        }
        "span.close" => Event::Span(SpanEvent::Close {
            id: field_u64(line, "id").ok_or_else(|| missing("id"))?,
        }),
        "lsc.save_fired" => Event::Lsc(LscEvent::SaveFired {
            run: field_u64(line, "run").ok_or_else(|| missing("run"))?,
            vc: field_u32(line, "vc").ok_or_else(|| missing("vc"))?,
            member: field_u32(line, "member").ok_or_else(|| missing("member"))?,
            vm: field_u32(line, "vm").ok_or_else(|| missing("vm"))?,
        }),
        "lsc.window_closed" => Event::Lsc(LscEvent::WindowClosed {
            run: field_u64(line, "run").ok_or_else(|| missing("run"))?,
            vc: field_u32(line, "vc").ok_or_else(|| missing("vc"))?,
            skew: SimDuration(field_u64(line, "skew_ns").ok_or_else(|| missing("skew_ns"))?),
            stored: field_bool(line, "stored").ok_or_else(|| missing("stored"))?,
        }),
        "lsc.abort_rearm" => Event::Lsc(LscEvent::AbortReArm {
            run: field_u64(line, "run").ok_or_else(|| missing("run"))?,
            vc: field_u32(line, "vc").ok_or_else(|| missing("vc"))?,
            attempt: field_u32(line, "attempt").ok_or_else(|| missing("attempt"))?,
        }),
        "lsc.run_finished" => Event::Lsc(LscEvent::RunFinished {
            run: field_u64(line, "run").ok_or_else(|| missing("run"))?,
            vc: field_u32(line, "vc").ok_or_else(|| missing("vc"))?,
            success: field_bool(line, "success").ok_or_else(|| missing("success"))?,
        }),
        "storage.transfer_retry" => Event::Storage(StorageEvent::TransferRetry {
            attempt: field_u32(line, "attempt").ok_or_else(|| missing("attempt"))?,
            max_attempts: field_u32(line, "max").ok_or_else(|| missing("max"))?,
            bytes: field_u64(line, "bytes").ok_or_else(|| missing("bytes"))?,
            backoff: SimDuration(
                field_u64(line, "backoff_ns").ok_or_else(|| missing("backoff_ns"))?,
            ),
        }),
        "storage.transfer_failed" => Event::Storage(StorageEvent::TransferFailed {
            bytes: field_u64(line, "bytes").ok_or_else(|| missing("bytes"))?,
        }),
        "fault.ctrl_dropped" => Event::Fault(FaultEvent::CtrlDropped {
            node: field_u32(line, "node").ok_or_else(|| missing("node"))?,
        }),
        "fault.ctrl_partitioned" => Event::Fault(FaultEvent::CtrlPartitioned {
            node: field_u32(line, "node").ok_or_else(|| missing("node"))?,
            in_flight: field_bool(line, "in_flight").ok_or_else(|| missing("in_flight"))?,
        }),
        _ => return Ok(None),
    };
    Ok(Some((t, ev)))
}

/// A parsed export: the reconstructed events plus stream-level facts the
/// events alone can't carry.
#[derive(Debug)]
pub struct ParsedStream {
    pub events: Vec<(SimTime, Event)>,
    /// Non-empty lines seen (consumed or skipped).
    pub lines: usize,
    /// Latest timestamp on *any* valid line, skipped keys included — the
    /// stream's true end. A trial whose job died mid-round keeps emitting
    /// fault/transport noise long after the last span event, and that tail
    /// is exactly the paused-member exposure
    /// [`dvc_sim_core::PhaseAttribution`] needs to see
    /// (via [`dvc_sim_core::PhaseAttribution::observe_end`]).
    pub end: Option<SimTime>,
}

/// Parse a whole exported stream; the first malformed line aborts with its
/// line number.
pub fn parse_stream(text: &str) -> Result<ParsedStream, String> {
    let mut out = ParsedStream {
        events: Vec::new(),
        lines: 0,
        end: None,
    };
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.lines += 1;
        let err = |e| format!("line {}: {e}", i + 1);
        let t = SimTime(
            field_u64(line, "t").ok_or_else(|| err(format!("no \"t\" field: {}", line.trim())))?,
        );
        out.end = Some(out.end.map_or(t, |e| e.max(t)));
        if let Some(ev) = parse_line(line).map_err(err)? {
            out.events.push(ev);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lines_round_trip_through_jsonl() {
        let open = Event::Span(SpanEvent::Open {
            id: 7,
            parent: 2,
            name: "vmm.save",
            arg: 3,
        });
        let line = open.jsonl(SimTime(5));
        let (t, ev) = parse_line(&line).unwrap().unwrap();
        assert_eq!(t, SimTime(5));
        assert_eq!(ev, open);

        let close = Event::Span(SpanEvent::Close { id: 7 });
        let line = close.jsonl(SimTime(6));
        assert_eq!(parse_line(&line).unwrap().unwrap(), (SimTime(6), close));
    }

    #[test]
    fn lifecycle_lines_round_trip() {
        for ev in [
            Event::Lsc(LscEvent::SaveFired {
                run: 3,
                vc: 1,
                member: 4,
                vm: 9,
            }),
            Event::Lsc(LscEvent::WindowClosed {
                run: 3,
                vc: 1,
                skew: SimDuration::from_millis(7),
                stored: false,
            }),
            Event::Lsc(LscEvent::RunFinished {
                run: 3,
                vc: 1,
                success: true,
            }),
            Event::Storage(StorageEvent::TransferRetry {
                attempt: 2,
                max_attempts: 4,
                bytes: 1 << 20,
                backoff: SimDuration::from_millis(300),
            }),
            Event::Fault(FaultEvent::CtrlPartitioned {
                node: 5,
                in_flight: true,
            }),
        ] {
            let line = ev.jsonl(SimTime(42));
            assert_eq!(
                parse_line(&line).unwrap(),
                Some((SimTime(42), ev)),
                "{line}"
            );
        }
    }

    #[test]
    fn unknown_keys_skip_and_malformed_lines_error() {
        // Unconsumed-but-valid keys are skipped.
        assert_eq!(
            parse_line("{\"t\":1,\"key\":\"tcp.retransmit\",\"ep\":4}").unwrap(),
            None
        );
        // No timestamp / no key / bad span name / missing field all error.
        assert!(parse_line("{\"key\":\"span.close\",\"id\":1}").is_err());
        assert!(parse_line("{\"t\":1}").is_err());
        assert!(parse_line(
            "{\"t\":1,\"key\":\"span.open\",\"id\":1,\"parent\":0,\"name\":\"x\",\"arg\":0}"
        )
        .is_err());
        assert!(parse_line("{\"t\":1,\"key\":\"span.close\"}").is_err());
    }

    #[test]
    fn parse_stream_counts_lines_and_reports_position() {
        let text = "{\"t\":1,\"key\":\"span.open\",\"id\":1,\"parent\":0,\"name\":\"lsc.round\",\"arg\":1}\n\
                    {\"t\":2,\"key\":\"mpi.job_launched\",\"ranks\":8}\n\
                    \n\
                    {\"t\":3,\"key\":\"span.close\",\"id\":1}\n\
                    {\"t\":9,\"key\":\"ntp.unanswered\",\"src\":\"p1\"}\n";
        let s = parse_stream(text).unwrap();
        assert_eq!(s.lines, 4);
        assert_eq!(s.events.len(), 2);
        // The stream end counts skipped keys too.
        assert_eq!(s.end, Some(SimTime(9)));

        let bad = "{\"t\":1,\"key\":\"span.close\",\"id\":1}\nnot json\n";
        let err = parse_stream(bad).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
