//! Markdown table rendering for experiment output.

/// A simple right-ragged markdown table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s.is_nan() {
        "-".into()
    } else if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["n", "failure"]);
        t.row(&["8".into(), "0.0%".into()]);
        t.row(&["12".into(), "90.0%".into()]);
        let s = t.render();
        assert!(s.starts_with("| n  | failure |\n|----|"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(0.0000005), "0.5us");
        assert_eq!(secs(0.05), "50.0ms");
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(pct(0.905), "90.5%");
    }
}
