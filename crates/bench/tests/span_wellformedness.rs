//! Span-tree well-formedness and replay stability on a real trial.
//!
//! The causal span layer rides the same typed event spine the golden LSC
//! digest pins (`lsc_event_golden.rs`), so it inherits the same contract:
//! for a fixed seed with the same sinks attached, the span stream — ids,
//! parents, open/close times — must replay bit-identically. On top of
//! that the tree itself must be well-formed: every opened span closed by
//! trial end, parents outliving children, no id reuse.

use dvc_bench::scen::{ring_load, run_cycles, settle, TrialWorld};
use dvc_bench::traceio;
use dvc_core::lsc::LscMethod;
use dvc_sim_core::{
    EventSink, InvariantChecker, JsonlSink, PhaseAttribution, SimDuration, SpanChecker,
};
use std::cell::RefCell;
use std::rc::Rc;

/// One small E3-like trial: 8-VM ring under NTP-scheduled LSC, two
/// checkpoint cycles, with a [`SpanChecker`] and a [`JsonlSink`] attached.
/// Returns the checker and the exported JSONL lines.
fn span_trial(seed: u64) -> (SpanChecker, Vec<String>) {
    let tw = TrialWorld {
        nodes: 8,
        seed,
        mem_mb: 64,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    let checker = Rc::new(RefCell::new(SpanChecker::new()));
    sim.attach_sink(checker.clone());
    let exporter = Rc::new(RefCell::new(JsonlSink::new(200_000)));
    sim.attach_sink(exporter.clone());
    let _job = ring_load(&mut sim, vc_id, u64::MAX / 2);
    settle(&mut sim, SimDuration::from_secs(30));
    let outs = run_cycles(
        &mut sim,
        vc_id,
        LscMethod::ntp_default(),
        2,
        SimDuration::from_secs(5),
    );
    settle(&mut sim, SimDuration::from_secs(20));
    assert_eq!(outs.len(), 2, "both checkpoint cycles must complete");
    assert!(outs.iter().all(|o| o.success), "cycles must succeed");
    let lines = std::mem::take(&mut exporter.borrow_mut().lines);
    drop(sim); // release the sim's clones of the sink Rcs
    let checker = Rc::try_unwrap(checker)
        .expect("sim dropped; checker uniquely owned")
        .into_inner();
    (checker, lines)
}

#[test]
fn span_tree_is_well_formed_over_a_full_trial() {
    let (c, _) = span_trial(42);
    assert!(c.is_clean(), "span violations: {:?}", c.violations());
    assert_eq!(c.unclosed(), 0, "every opened span must close by trial end");
    assert!(c.opened() > 0, "the instrumented trial must emit spans");
    assert_eq!(c.opened(), c.closed());
    // Two rounds over 8 members: at least round + dispatch + vmm.save +
    // storage.write per member + ack_collect + resume per cycle.
    assert!(
        c.opened() >= 2 * (1 + 8 * 3 + 2),
        "span count suspiciously low: {}",
        c.opened()
    );
}

#[test]
fn span_digest_is_replay_stable() {
    let (a, _) = span_trial(7);
    let (b, _) = span_trial(7);
    assert_eq!(
        a.digest(),
        b.digest(),
        "same seed + same sinks must replay the same span stream"
    );
    let (c, _) = span_trial(8);
    assert_ne!(
        a.digest(),
        c.digest(),
        "different seeds should time spans differently"
    );
}

#[test]
fn exported_jsonl_replays_to_the_same_span_digest() {
    let (live, lines) = span_trial(42);
    let text = lines.join("\n") + "\n";
    let stream = traceio::parse_stream(&text).expect("exported stream must parse");
    assert_eq!(stream.lines, lines.len());
    let mut replayed = SpanChecker::new();
    let mut attrib = PhaseAttribution::new(InvariantChecker::default_budget());
    for (t, e) in &stream.events {
        replayed.on_event(*t, e);
        attrib.on_event(*t, e);
    }
    assert!(replayed.is_clean(), "{:?}", replayed.violations());
    assert_eq!(
        replayed.digest(),
        live.digest(),
        "parsing the export must reconstruct the exact span stream"
    );
    // Phase attribution over a clean trial: both rounds stored, margin
    // positive (the pause spread stayed inside the TCP silence budget).
    assert_eq!(attrib.rounds().len(), 2);
    for r in attrib.rounds() {
        assert!(!r.is_failed(), "no round fails in a fault-free trial");
        let m = r
            .margin_s(InvariantChecker::default_budget())
            .expect("stored rounds have a margin");
        assert!(m > 0.0, "margin must be positive on a clean round: {m}");
    }
}
