//! The stream-checked window invariant must actually *fire* when a seeded
//! fault makes a stored checkpoint set illegal — a checker that only ever
//! reports "clean" proves nothing.
//!
//! Scenario: an NTP outage blankets the whole run, and one member's clock
//! steps +6 s mid-outage. The NTP-scheduled coordinator keeps trusting
//! wall-clock fire instants, so that member pauses ~6 s out of step with
//! its peers — far past the ≈3 s guest-TCP silence budget the
//! [`InvariantChecker`] enforces on stored windows.

use dvc_bench::scen::{ring_load, run_cycles, settle, TrialWorld};
use dvc_cluster::faults::install_fault_plan;
use dvc_core::lsc::LscMethod;
use dvc_sim_core::{FaultPlan, InvariantChecker, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn window_invariant_fires_on_seeded_clock_step() {
    let tw = TrialWorld {
        nodes: 6,
        seed: 1907,
        mem_mb: 64,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    let checker = Rc::new(RefCell::new(InvariantChecker::new(
        InvariantChecker::default_budget(),
    )));
    sim.attach_sink(checker.clone());

    let _job = ring_load(&mut sim, vc_id, u64::MAX / 2);
    settle(&mut sim, SimDuration::from_secs(20));

    // NTP goes dark for the rest of the run; node 2's clock steps +6 s
    // shortly before the checkpoint is scheduled.
    let t0 = sim.now();
    let mut plan = FaultPlan::new(0xBAD);
    plan.window(
        "ntp.outage",
        None,
        t0,
        t0 + SimDuration::from_secs(600),
        1.0,
    );
    plan.window(
        "clock.step",
        Some(2),
        t0 + SimDuration::from_secs(2),
        t0 + SimDuration::from_secs(2),
        6.0,
    );
    install_fault_plan(&mut sim, plan);

    let outs = run_cycles(
        &mut sim,
        vc_id,
        LscMethod::ntp_default(),
        1,
        SimDuration::from_secs(10),
    );
    assert_eq!(outs.len(), 1, "the checkpoint cycle must run");

    let c = checker.borrow();
    let counts = c.counts();
    assert!(counts.windows > 0, "the window must have closed and stored");
    assert!(
        !c.is_clean(),
        "a +6 s clock step under an NTP outage must trip the window \
         invariant (budget ≈3 s); counts: {counts:?}"
    );
    assert!(
        c.violations()
            .iter()
            .any(|v| v.contains("window") || v.contains("skew") || v.contains("spread")),
        "violation should describe the window/skew breach: {:?}",
        c.violations()
    );
}
