//! Tier-1 regression gate: every shrunk reproducer in
//! `crates/bench/fuzz-corpus/` is re-run forever.
//!
//! Each case is held to its `expect` header (`clean` — all oracles green,
//! no detections; `detection` — all oracles green AND the paper's
//! blown-window phenomenon observed), and every replay runs the
//! determinism double-check, so the corpus is also a standing same-seed
//! digest-identity test across the whole model.

use dvc_bench::fuzz::corpus;

#[test]
fn every_corpus_case_replays_with_its_expectation() {
    let dir = corpus::default_dir();
    let cases = corpus::load_dir(&dir).expect("corpus directory must load");
    assert!(
        cases.len() >= 3,
        "corpus must keep at least 3 cases, found {} in {}",
        cases.len(),
        dir.display()
    );
    let mut failures = Vec::new();
    for (path, case) in &cases {
        match corpus::replay(case) {
            Ok(report) => eprintln!("{}: {}", case.name, report.summary()),
            Err(e) => failures.push(format!("{}: {e}", path.display())),
        }
    }
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}

/// The corpus must exercise both expectation kinds — losing the last
/// `detection` case would silently stop pinning the paper's phenomenon.
#[test]
fn corpus_covers_both_expectations() {
    let cases = corpus::load_dir(&corpus::default_dir()).unwrap();
    let has = |e| cases.iter().any(|(_, c)| c.expect == e);
    assert!(has(corpus::Expectation::Clean));
    assert!(has(corpus::Expectation::Detection));
}
