//! Same seed → same campaign output, whatever the thread count.
//!
//! This is the regression fence for the zero-copy/cancellation work on the
//! hot path: an E2-style checkpoint campaign (full cluster world, ring job,
//! one coordinated checkpoint cycle per trial) must produce byte-identical
//! outcome tables run single-threaded or fanned out across 8 workers, for
//! multiple master seeds. Any hidden nondeterminism — iteration-order leaks,
//! time-dependent buffering, cross-trial state — shows up as a digest
//! mismatch here long before it corrupts a paper table.

use dvc_bench::scen::{one_cycle_trial, TrialWorld};
use dvc_core::lsc::LscMethod;
use dvc_sim_core::trial::run_trials;
use dvc_sim_core::SimDuration;

const TRIALS: usize = 6;

/// One campaign: `TRIALS` independent single-cycle trials, rendered to the
/// exact per-trial lines an experiment table would be built from.
fn campaign_lines(master_seed: u64, threads: usize) -> Vec<String> {
    let results = run_trials(TRIALS, master_seed, threads, |i, seed| {
        let tw = TrialWorld {
            nodes: 6,
            seed,
            ..TrialWorld::default()
        };
        let method = LscMethod::Ntp {
            lead: SimDuration::from_secs(2),
        };
        let (ok, out) = one_cycle_trial(tw, method);
        match out {
            Some(o) => format!(
                "trial={i} ok={ok} success={} set={:?} attempts={} \
                 pause_skew={:?} resume_skew={:?} save={:?} total={:?}",
                o.success,
                o.set_id,
                o.attempts,
                o.pause_skew,
                o.resume_skew,
                o.save_duration,
                o.total_duration
            ),
            None => format!("trial={i} ok={ok} no-outcome"),
        }
    });
    results
}

fn fnv64(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for l in lines {
        for b in l.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x0a;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn campaign_is_thread_count_and_rerun_invariant() {
    for master_seed in [20070926u64, 0xD5C0_BEEF] {
        let single = campaign_lines(master_seed, 1);
        let fanned = campaign_lines(master_seed, 8);
        assert_eq!(
            single, fanned,
            "seed {master_seed}: 1-thread and 8-thread campaigns diverged"
        );
        assert_eq!(
            fnv64(&single),
            fnv64(&fanned),
            "seed {master_seed}: digest mismatch"
        );
        // Trials must be genuinely distinct runs, not one result repeated.
        let mut uniq = single.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() > 1, "all trials identical — seeding is broken");
    }
    // And the two seeds must not collide with each other.
    assert_ne!(
        fnv64(&campaign_lines(20070926, 1)),
        fnv64(&campaign_lines(0xD5C0_BEEF, 1)),
        "different master seeds produced identical campaigns"
    );
}
