//! Golden digest over the typed LSC event stream.
//!
//! The observability spine must be as deterministic as the simulation it
//! watches: for a fixed seed, the exact sequence of [`Event::Lsc`]
//! emissions — arm, fire, ack, window close, set store — is part of the
//! reproducibility contract, the same way the TCP segment traces are
//! (`dvc-net/tests/tcp_golden_traces.rs`). Each line is `"{t_ns} {key}"`;
//! we pin an FNV-1a digest plus the line count rather than the full dump.
//!
//! If an intentional change to LSC scheduling or event emission shifts the
//! stream, regenerate with:
//!
//! `DUMP_LSC_EVENT_GOLDEN=1 cargo test -p dvc-bench --test lsc_event_golden -- --nocapture`
//!
//! and paste the printed digest/line-count into the test.

use dvc_bench::scen::{ring_load, run_cycles, settle, TrialWorld};
use dvc_core::lsc::LscMethod;
use dvc_sim_core::{Event, EventSink, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Records `"{t_ns} {key}"` for every LSC event it sees.
#[derive(Default)]
struct LscRecorder {
    lines: Vec<String>,
}

impl EventSink for LscRecorder {
    fn on_event(&mut self, time: SimTime, event: &Event) {
        if matches!(event, Event::Lsc(_)) {
            self.lines.push(format!("{} {}", time.0, event.key()));
        }
    }
}

/// One small E3-like trial: 8-VM ring under NTP-scheduled LSC, two
/// checkpoint cycles. Returns the recorded LSC event lines.
fn lsc_event_lines(seed: u64) -> Vec<String> {
    let tw = TrialWorld {
        nodes: 8,
        seed,
        mem_mb: 64,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    let rec = Rc::new(RefCell::new(LscRecorder::default()));
    sim.attach_sink(rec.clone());
    let _job = ring_load(&mut sim, vc_id, u64::MAX / 2);
    settle(&mut sim, SimDuration::from_secs(30));
    let outs = run_cycles(
        &mut sim,
        vc_id,
        LscMethod::ntp_default(),
        2,
        SimDuration::from_secs(5),
    );
    settle(&mut sim, SimDuration::from_secs(20));
    assert_eq!(outs.len(), 2, "both checkpoint cycles must complete");
    assert!(outs.iter().all(|o| o.success), "cycles must succeed");
    let lines = std::mem::take(&mut rec.borrow_mut().lines);
    lines
}

/// FNV-1a over every line, with a virtual `\n` after each.
fn fnv64(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for l in lines {
        for b in l.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x0a;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn lsc_event_stream_matches_golden() {
    let lines = lsc_event_lines(42);
    if std::env::var("DUMP_LSC_EVENT_GOLDEN").is_ok() {
        for l in &lines {
            println!("{l}");
        }
        println!("lines = {}, digest = 0x{:016x}", lines.len(), fnv64(&lines));
        return;
    }
    // Shape checks that hold regardless of exact timing: two full windows
    // over 8 members — arm + fire + ack per member per cycle, one window
    // close and one stored set per cycle.
    let count = |k: &str| lines.iter().filter(|l| l.ends_with(k)).count();
    assert_eq!(count("lsc.arm_sent"), 16);
    assert_eq!(count("lsc.save_fired"), 16);
    assert_eq!(count("lsc.save_acked"), 16);
    assert_eq!(count("lsc.window_closed"), 2);
    assert_eq!(count("lsc.set_stored"), 2);

    let digest = fnv64(&lines);
    assert_eq!(
        (lines.len(), digest),
        GOLDEN,
        "typed LSC event stream drifted from its golden digest; if the \
         change is intentional, regenerate with DUMP_LSC_EVENT_GOLDEN=1"
    );
}

#[test]
fn same_seed_same_event_stream() {
    let a = lsc_event_lines(7);
    let b = lsc_event_lines(7);
    assert_eq!(a, b, "typed event stream must replay bit-identically");
    assert_ne!(
        fnv64(&a),
        fnv64(&lsc_event_lines(8)),
        "different seeds should time events differently"
    );
}

/// Pinned (line count, FNV-1a digest) for seed 42.
const GOLDEN: (usize, u64) = (54, 0x6e5655edb97c0719);
