//! Cross-crate end-to-end tests against the facade's public API: the full
//! user stories a DVC adopter would script.

use dvc_suite::prelude::*;
use dvc_suite::scenarios::{self, Testbed};
use dvc_suite::{cluster, dvc, mpi, workloads};

/// The quickstart story, as a regression test: provision → run → checkpoint
/// → lose every host → migrate → finish verified.
#[test]
fn checkpoint_migrate_survive_story() {
    let mut sim = scenarios::testbed(Testbed {
        nodes_per_cluster: 9,
        seed: 424242,
        ..Testbed::default()
    });
    let hosts: Vec<NodeId> = (1..=4).map(NodeId).collect();
    let mut spec = VcSpec::new("story", 4, 64);
    spec.os_image_bytes = 32 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);

    let cfg = workloads::ring::RingConfig {
        payload_len: 2048,
        iters: 400,
        compute_ns: 150_000_000,
    };
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        workloads::ring::program(cfg, r, s)
    });

    let at = sim.now() + SimDuration::from_secs(30);
    sim.schedule_at(at, move |sim| {
        dvc::lsc::checkpoint_vc(sim, vc, LscMethod::ntp_default(), move |sim, out| {
            assert!(out.success);
            let set = out.set_id.unwrap();
            sim.schedule_in(SimDuration::from_secs(10), move |sim| {
                for n in 1..=4 {
                    cluster::failure::crash_node(sim, NodeId(n));
                }
                let targets: Vec<NodeId> = (5..=8).map(NodeId).collect();
                dvc::lsc::restore_vc(sim, set, targets, SimDuration::from_secs(5), |_s, o| {
                    assert!(o.success);
                })
                .expect("restore should start");
            });
        });
    });

    let done = scenarios::run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        mpi::harness::all_done(sim, &job)
    });
    assert!(done, "{:?}", mpi::harness::first_failure(&sim, &job));
    for r in 0..job.size {
        assert!(workloads::ring::ring_ok(
            &mpi::harness::rank(&sim, &job, r).data
        ));
    }
    assert_eq!(
        dvc::vc::vc(&sim, vc).unwrap().hosts,
        (5..=8).map(NodeId).collect::<Vec<_>>()
    );
}

/// The whole stack is bit-deterministic: identical seeds produce identical
/// trajectories through provisioning, NTP, MPI, checkpointing and restore.
#[test]
fn full_stack_determinism() {
    let run = |seed: u64| -> (u64, u64, String) {
        let mut sim = scenarios::testbed(Testbed {
            nodes_per_cluster: 6,
            seed,
            ..Testbed::default()
        });
        let hosts: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let mut spec = VcSpec::new("det", 4, 64);
        spec.os_image_bytes = 32 << 20;
        spec.boot_time = SimDuration::from_secs(5);
        let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);
        let cfg = workloads::ring::RingConfig {
            payload_len: 1024,
            iters: 150,
            compute_ns: 100_000_000,
        };
        let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
            workloads::ring::program(cfg, r, s)
        });
        let at = sim.now() + SimDuration::from_secs(10);
        sim.schedule_at(at, move |sim| {
            dvc::lsc::checkpoint_vc(sim, vc, LscMethod::ntp_default(), |sim, out| {
                sim.world.ext.insert(out);
            });
        });
        let done = scenarios::run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
            mpi::harness::all_done(sim, &job)
        });
        assert!(done);
        let out = sim.world.ext.get::<LscOutcome>().unwrap();
        let st = mpi::harness::rank(&sim, &job, 0).stats.clone();
        (
            sim.now().nanos(),
            st.bytes_sent,
            format!("{:?}|{:?}", out.pause_skew, out.save_duration),
        )
    };
    let a = run(777);
    let b = run(777);
    assert_eq!(a, b, "same seed must replay identically");
    let c = run(778);
    assert_ne!(a.0, c.0, "different seed must differ");
}

/// HPL checkpointed and migrated mid-factorization still produces a
/// machine-precision residual — numerical transparency across migration.
#[test]
fn hpl_residual_survives_migration() {
    let mut sim = scenarios::testbed(Testbed {
        nodes_per_cluster: 9,
        seed: 31337,
        ..Testbed::default()
    });
    let hosts: Vec<NodeId> = (1..=4).map(NodeId).collect();
    let mut spec = VcSpec::new("hpl", 4, 64);
    spec.os_image_bytes = 32 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);

    let cfg = workloads::hpl::HplConfig::new(128, 16, 9);
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        let (mut ops, data) = workloads::hpl::program(cfg, r, s);
        // Stretch the run so the checkpoint lands mid-factorization.
        ops.insert(1, dvc_suite::mpi::ops::Op::ComputeNs(30_000_000_000));
        (ops, data)
    });

    let at = sim.now() + SimDuration::from_secs(10);
    sim.schedule_at(at, move |sim| {
        dvc::lsc::checkpoint_vc(sim, vc, LscMethod::ntp_default(), move |sim, out| {
            assert!(out.success);
            let set = out.set_id.unwrap();
            // Migrate immediately (no crash needed — planned migration).
            let targets: Vec<NodeId> = (5..=8).map(NodeId).collect();
            dvc::lsc::restore_vc(sim, set, targets, SimDuration::from_secs(5), |_s, o| {
                assert!(o.success);
            })
            .expect("restore should start");
        });
    });

    let done = scenarios::run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        mpi::harness::all_done(sim, &job)
    });
    assert!(done, "{:?}", mpi::harness::first_failure(&sim, &job));
    let residual = mpi::harness::rank(&sim, &job, 0).data.f64("hpl.residual");
    assert!(residual < 1e-10, "residual {residual}");
}

/// A spanning virtual cluster runs PTRANS across two physical clusters and
/// checkpoints over the WAN trunk.
#[test]
fn spanning_vc_checkpoints_across_clusters() {
    let mut sim = scenarios::testbed(Testbed {
        clusters: 2,
        nodes_per_cluster: 5,
        seed: 99,
        ..Testbed::default()
    });
    // 3 nodes from each cluster.
    let hosts: Vec<NodeId> = vec![1, 2, 3, 6, 7, 8].into_iter().map(NodeId).collect();
    let mut spec = VcSpec::new("span", 6, 64);
    spec.os_image_bytes = 32 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);
    assert_eq!(
        dvc::vc::vc(&sim, vc).unwrap().mapping(&sim.world),
        dvc::vc::Mapping::Spanning
    );

    let cfg = workloads::ptrans::PtransConfig::new(180, 3).with_reps(3000);
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        workloads::ptrans::program(cfg, r, s)
    });
    let at = sim.now() + SimDuration::from_secs(8);
    sim.schedule_at(at, move |sim| {
        dvc::lsc::checkpoint_vc(sim, vc, LscMethod::ntp_default(), |sim, out| {
            assert!(out.success, "{}", out.detail);
            sim.world.ext.insert(out);
        });
    });
    let done = scenarios::run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        mpi::harness::all_done(sim, &job)
    });
    assert!(done, "{:?}", mpi::harness::first_failure(&sim, &job));
    assert!(
        sim.world.ext.get::<LscOutcome>().is_some(),
        "checkpoint should have landed mid-run"
    );
    for r in 0..job.size {
        let d = &mpi::harness::rank(&sim, &job, r).data;
        assert_eq!(d.f64("pt.worst_err"), 0.0);
    }
}

/// The resource manager + DVC placement: a job too wide for either cluster
/// runs when spanning is allowed and stays queued when it is not.
#[test]
fn rm_spanning_placement_end_to_end() {
    use cluster::rm::{self, JobSpec, Placement};
    let mut sim = scenarios::testbed(Testbed {
        clusters: 2,
        nodes_per_cluster: 4,
        seed: 5,
        ..Testbed::default()
    });
    let narrow = rm::submit(
        &mut sim,
        JobSpec {
            name: "narrow".into(),
            nodes: 6,
            est_duration: SimDuration::from_secs(100),
            placement: Placement::SingleCluster,
        },
        |_s, _id, _n| {},
    );
    let wide = rm::submit(
        &mut sim,
        JobSpec {
            name: "wide".into(),
            nodes: 6,
            est_duration: SimDuration::from_secs(100),
            placement: Placement::AllowSpan,
        },
        |_s, _id, _n| {},
    );
    // 8 nodes total, 4 per cluster: the 6-node single-cluster job can never
    // start; the spanning one starts immediately (backfilled past it).
    assert_eq!(
        sim.world.rm.job(narrow).unwrap().state,
        cluster::rm::JobState::Queued
    );
    assert_eq!(
        sim.world.rm.job(wide).unwrap().state,
        cluster::rm::JobState::Running
    );
}
