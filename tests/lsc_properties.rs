//! Property-based tests of the headline invariant: for arbitrary checkpoint
//! instants, cycle counts, cluster shapes and seeds, an NTP-coordinated
//! checkpoint of a running verified workload is transparent — the
//! application survives with intact data and the set is complete.

use dvc_suite::prelude::*;
use dvc_suite::scenarios::{self, Testbed};
use dvc_suite::{dvc, mpi, workloads};
use proptest::prelude::*;

fn cycle_trial(seed: u64, vnodes: usize, offset_ms: u64, cycles: u32) -> Result<(), String> {
    let mut sim = scenarios::testbed(Testbed {
        nodes_per_cluster: vnodes + 2,
        seed,
        ..Testbed::default()
    });
    let hosts: Vec<NodeId> = (1..=vnodes as u32).map(NodeId).collect();
    let mut spec = VcSpec::new("prop", vnodes, 32);
    spec.os_image_bytes = 16 << 20;
    spec.boot_time = SimDuration::from_secs(2);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);

    let cfg = workloads::ring::RingConfig {
        payload_len: 1024,
        iters: u64::MAX / 2, // effectively endless
        compute_ns: 120_000_000,
    };
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        workloads::ring::program(cfg, r, s)
    });

    // Warm up NTP + the job, then run the cycles back-to-back with an
    // arbitrary sub-second phase.
    let warm = sim.now() + SimDuration::from_secs(30) + SimDuration::from_millis(offset_ms);
    let _ = scenarios::run_until(&mut sim, warm, |_| false);
    for k in 0..cycles {
        #[derive(Default)]
        struct Got(Option<bool>);
        sim.world.ext.insert(Got::default());
        dvc::lsc::checkpoint_vc(&mut sim, vc, LscMethod::ntp_default(), |sim, out| {
            sim.world.ext.get_or_default::<Got>().0 = Some(out.success);
        });
        let ok = scenarios::run_until(&mut sim, SimTime::from_secs_f64(1e6), |sim| {
            sim.world.ext.get::<Got>().is_some_and(|g| g.0.is_some())
        });
        if !ok {
            return Err(format!("cycle {k}: sim drained before outcome"));
        }
        if sim.world.ext.get::<Got>().unwrap().0 != Some(true) {
            return Err(format!("cycle {k}: checkpoint failed"));
        }
    }
    // Let any transport fallout surface.
    let until = sim.now() + SimDuration::from_secs(60);
    let _ = scenarios::run_until(&mut sim, until, |_| false);

    if let Some((r, e)) = mpi::harness::first_failure(&sim, &job) {
        return Err(format!("rank {r} failed: {e}"));
    }
    for r in 0..job.size {
        let d = &mpi::harness::rank(&sim, &job, r).data;
        if d.u64("ring.errors") != 0 {
            return Err(format!("rank {r}: payload corruption"));
        }
        if d.u64("ring.iter") < 10 {
            return Err(format!("rank {r}: no progress ({})", d.u64("ring.iter")));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case is a full multi-VM simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn ntp_checkpoints_are_transparent_anywhere(
        seed in any::<u64>(),
        vnodes in 3usize..8,
        offset_ms in 0u64..1000,
        cycles in 1u32..4,
    ) {
        if let Err(e) = cycle_trial(seed, vnodes, offset_ms, cycles) {
            return Err(TestCaseError::fail(format!(
                "seed={seed} vnodes={vnodes} offset={offset_ms}ms cycles={cycles}: {e}"
            )));
        }
    }
}
