//! LSC shootout: naive vs. NTP-scheduled vs. hardened, live.
//!
//! For a range of node counts, take one checkpoint of a running ring job
//! with each coordinator and print what happened: pause skew, success, and
//! whether the application survived. This is the qualitative version of
//! experiments E2–E4 (run `cargo run -p dvc-bench --bin experiments` for
//! the full campaigns).
//!
//! Run: `cargo run --release --example lsc_shootout`

use dvc_suite::prelude::*;
use dvc_suite::scenarios::{self, Testbed};
use dvc_suite::{dvc, mpi, workloads};

fn trial(n: usize, method: LscMethod, seed: u64) -> (bool, bool, SimDuration) {
    let mut sim = scenarios::testbed(Testbed {
        nodes_per_cluster: n + 1,
        seed,
        ..Testbed::default()
    });
    let hosts: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
    let mut spec = VcSpec::new("vc", n, 64);
    spec.os_image_bytes = 32 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);

    let cfg = workloads::ring::RingConfig {
        payload_len: 4096,
        iters: 3000,
        compute_ns: 100_000_000,
    };
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        workloads::ring::program(cfg, r, s)
    });

    let at = sim.now() + SimDuration::from_secs(60);
    sim.schedule_at(at, move |sim| {
        dvc::lsc::checkpoint_vc(sim, vc, method, |sim, out| {
            sim.world.ext.insert(out);
        });
    });

    // Run until the checkpoint outcome exists and any transport fallout
    // has had time to surface.
    scenarios::run_until(&mut sim, SimTime::from_secs_f64(400.0), |sim| {
        sim.world.ext.get::<LscOutcome>().is_some() && sim.now() > at + SimDuration::from_secs(120)
    });
    let out = sim.world.ext.get::<LscOutcome>().cloned();
    let app_ok = mpi::harness::first_failure(&sim, &job).is_none();
    match out {
        Some(o) => (o.success, app_ok, o.pause_skew),
        None => (false, app_ok, SimDuration::ZERO),
    }
}

fn main() {
    println!("| nodes | method   | vm saves | app survived | pause skew |");
    println!("|-------|----------|----------|--------------|------------|");
    for &n in &[4usize, 8, 12] {
        for (method, name) in [
            (LscMethod::Naive, "naive"),
            (LscMethod::ntp_default(), "ntp"),
            (dvc::lsc::LscMethod::hardened_default(), "hardened"),
        ] {
            let (saved, app_ok, skew) = trial(n, method, 9000 + n as u64);
            println!(
                "| {:>5} | {:<8} | {:<8} | {:<12} | {:>10} |",
                n,
                name,
                if saved { "ok" } else { "FAILED" },
                if app_ok { "yes" } else { "NO" },
                format!("{skew}")
            );
        }
    }
    println!();
    println!(
        "naive skew grows with node count until it crosses the TCP retry \
         budget; ntp/hardened stay at clock-sync residuals (paper §3.1)."
    );
}
