//! Predicted-fault evacuation (paper §1: "avoidance of job failure when
//! hardware faults can be predicted").
//!
//! A node starts reporting a predicted fault (think: ECC error counters,
//! SMART warnings) 40 s before it actually dies. The reliability layer
//! reacts by checkpointing the virtual cluster and migrating it off the
//! sick node *before* the crash — the job never notices.
//!
//! Run: `cargo run --release --example fault_masking`

use dvc_suite::prelude::*;
use dvc_suite::scenarios::{self, Testbed};
use dvc_suite::{cluster, dvc, mpi, workloads};

fn main() {
    let mut sim = scenarios::testbed(Testbed {
        nodes_per_cluster: 9,
        ..Testbed::default()
    });

    let hosts: Vec<NodeId> = (1..=4).map(NodeId).collect();
    let mut spec = VcSpec::new("evac-vc", 4, 64);
    spec.os_image_bytes = 64 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);

    let cfg = workloads::ring::RingConfig {
        payload_len: 4096,
        iters: 800,
        compute_ns: 150_000_000,
    };
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        workloads::ring::program(cfg, r, s)
    });
    println!("== 4-rank ring job on nodes 1-4");

    // Node 2 will warn at t≈60 s and die at t≈100 s.
    let warn_at = SimTime::from_secs_f64(60.0);
    let fail_at = SimTime::from_secs_f64(100.0);
    cluster::failure::arm_predicted_fault(
        &mut sim,
        NodeId(2),
        warn_at,
        fail_at,
        move |sim, sick| {
            println!(
                "== t={}: node {sick:?} reports a predicted fault — evacuating",
                sim.now()
            );
            // Checkpoint now, then migrate the whole VC onto healthy nodes.
            dvc::lsc::checkpoint_vc(sim, vc, LscMethod::ntp_default(), move |sim, out| {
                assert!(out.success, "evacuation checkpoint failed: {}", out.detail);
                let set = out.set_id.unwrap();
                let targets: Vec<NodeId> = (5..=8).map(NodeId).collect();
                dvc::lsc::restore_vc(sim, set, targets, SimDuration::from_secs(5), |sim, o| {
                    println!(
                        "== t={}: VC migrated to nodes 5-8 (resume skew {})",
                        sim.now(),
                        o.resume_skew
                    );
                    assert!(o.success);
                })
                .expect("restore should start");
            });
        },
    );

    let done = scenarios::run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        mpi::harness::all_done(sim, &job)
    });
    assert!(
        done,
        "job stalled: {:?}",
        mpi::harness::first_failure(&sim, &job)
    );
    for r in 0..job.size {
        assert!(workloads::ring::ring_ok(
            &mpi::harness::rank(&sim, &job, r).data
        ));
    }
    let crashed = !sim.world.node(NodeId(2)).up;
    println!(
        "== node 2 crashed as predicted: {crashed}; job finished at t={} with data verified",
        sim.now()
    );
    println!("== the predicted fault was masked: zero lost work, zero application changes");
}
