//! Quickstart: the whole DVC story in one file.
//!
//! 1. Build a simulated 8-node cluster (drifting clocks, NTP, shared
//!    storage, gigabit fabric).
//! 2. Provision a 4-vnode virtual cluster and run a communication-heavy
//!    ring job on it.
//! 3. Take a transparent NTP-scheduled LSC checkpoint mid-run.
//! 4. Kill every node the job runs on.
//! 5. Restore the checkpoint set onto different physical nodes and watch
//!    the job finish with verified data.
//!
//! Run: `cargo run --release --example quickstart`

use dvc_suite::prelude::*;
use dvc_suite::scenarios::{self, Testbed};
use dvc_suite::{cluster, dvc, mpi, workloads};

fn main() {
    let mut sim = scenarios::testbed(Testbed {
        nodes_per_cluster: 9, // head + 4 job nodes + 4 spares
        ..Testbed::default()
    });
    println!("== testbed: 9 nodes, NTP running, shared storage attached");

    // --- provision a virtual cluster on nodes 1..4 -----------------------
    let hosts: Vec<NodeId> = (1..=4).map(NodeId).collect();
    let mut spec = VcSpec::new("demo-vc", 4, 64);
    spec.os_image_bytes = 64 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);
    println!(
        "== virtual cluster up at t={} (staging + boot), mapping: {:?}",
        sim.now(),
        dvc::vc::vc(&sim, vc).unwrap().mapping(&sim.world)
    );

    // --- run a ring job on it --------------------------------------------
    let cfg = workloads::ring::RingConfig {
        payload_len: 4096,
        iters: 600,
        compute_ns: 150_000_000,
    };
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        workloads::ring::program(cfg, r, s)
    });
    println!("== 4-rank ring job launched (600 laps, 32 KiB per hop)");

    // --- checkpoint mid-run ------------------------------------------------
    let ckpt_at = sim.now() + SimDuration::from_secs(45);
    sim.schedule_at(ckpt_at, move |sim| {
        dvc::lsc::checkpoint_vc(sim, vc, LscMethod::ntp_default(), |sim, out| {
            println!(
                "== checkpoint: success={} pause_skew={} save={} (set {:?})",
                out.success, out.pause_skew, out.save_duration, out.set_id
            );
            let set = out.set_id.expect("set stored");
            // --- catastrophe: all four hosts die 20 s later ---------------
            sim.schedule_in(SimDuration::from_secs(20), move |sim| {
                println!("== CRASH: nodes 1-4 fail at t={}", sim.now());
                for n in 1..=4 {
                    cluster::failure::crash_node(sim, NodeId(n));
                }
                // --- restore the whole VC on the spare nodes --------------
                let targets: Vec<NodeId> = (5..=8).map(NodeId).collect();
                dvc::lsc::restore_vc(sim, set, targets, SimDuration::from_secs(5), |sim, out| {
                    println!(
                        "== restored onto nodes 5-8 at t={}: success={} resume_skew={}",
                        sim.now(),
                        out.success,
                        out.resume_skew
                    );
                })
                .expect("restore should start");
            });
        });
    });

    // --- drive to completion ----------------------------------------------
    // Note: while the crashed VC is being restored its VMs are transiently
    // "dead", so we wait for completion rather than reacting to transient
    // state; a stuck job is caught by the horizon.
    let done = scenarios::run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        mpi::harness::all_done(sim, &job)
    });
    if !done {
        println!(
            "!! job did not complete: {:?}",
            mpi::harness::first_failure(&sim, &job)
        );
        std::process::exit(1);
    }

    // --- verify ------------------------------------------------------------
    for r in 0..job.size {
        let data = &mpi::harness::rank(&sim, &job, r).data;
        assert!(workloads::ring::ring_ok(data), "rank {r} data corrupted");
    }
    let v = dvc::vc::vc(&sim, vc).unwrap();
    println!(
        "== job completed at t={} on hosts {:?} with all payload checksums OK",
        sim.now(),
        v.hosts
    );
    println!("== the node crash was completely transparent to the application");
}
