//! A virtual cluster spanning two physical clusters (paper goal 3, Fig. 1).
//!
//! Two 8-node clusters are joined by a campus WAN link. Neither cluster has
//! 12 free nodes, but DVC provisions a 12-vnode virtual cluster across both
//! and runs a PTRANS job on it — the all-to-all traffic crosses the
//! inter-cluster trunk transparently. The job is then checkpointed with the
//! NTP coordinator, which still works because both clusters discipline
//! their clocks against the same head node.
//!
//! Run: `cargo run --release --example multi_cluster_span`

use dvc_suite::prelude::*;
use dvc_suite::scenarios::{self, Testbed};
use dvc_suite::{dvc, mpi, workloads};

fn main() {
    let mut sim = scenarios::testbed(Testbed {
        clusters: 2,
        nodes_per_cluster: 8,
        ..Testbed::default()
    });
    println!("== two 8-node clusters joined by a 1 ms campus trunk");

    // 6 nodes from each cluster → a 12-vnode spanning VC.
    let hosts: Vec<NodeId> = (1..=6).chain(8..14).map(NodeId).collect();
    let mut spec = VcSpec::new("span-vc", 12, 64);
    spec.os_image_bytes = 64 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);
    let mapping = dvc::vc::vc(&sim, vc).unwrap().mapping(&sim.world);
    println!("== VC up, mapping = {mapping:?}");
    assert_eq!(mapping, dvc::vc::Mapping::Spanning);

    // PTRANS: all-to-all across the trunk.
    let cfg = workloads::ptrans::PtransConfig::new(480, 11).with_reps(1500);
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        workloads::ptrans::program(cfg, r, s)
    });
    println!("== PTRANS n=480 ×1500 reps launched across both clusters");

    // Checkpoint mid-run with the NTP coordinator.
    let at = sim.now() + SimDuration::from_secs(8);
    sim.schedule_at(at, move |sim| {
        dvc::lsc::checkpoint_vc(sim, vc, LscMethod::ntp_default(), |sim, out| {
            println!(
                "== spanning checkpoint: success={} pause_skew={} (WAN-synced clocks)",
                out.success, out.pause_skew
            );
            assert!(out.success);
            sim.world.ext.insert(out);
        });
    });

    let done = scenarios::run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        mpi::harness::all_done(sim, &job)
    });
    assert!(
        done,
        "PTRANS stalled: {:?}",
        mpi::harness::first_failure(&sim, &job)
    );
    assert!(
        sim.world.ext.get::<LscOutcome>().is_some(),
        "checkpoint never happened (job finished too early)"
    );

    for r in 0..job.size {
        let d = &mpi::harness::rank(&sim, &job, r).data;
        assert_eq!(d.f64("pt.worst_err"), 0.0, "rank {r} corrupted");
    }
    println!(
        "== PTRANS finished at t={} with every element verified — one job, \
         two clusters, one transparent checkpoint",
        sim.now()
    );

    // Cross-trunk traffic proof: ranks on cluster 0 exchanged bytes with
    // ranks on cluster 1.
    let s0 = mpi::harness::rank(&sim, &job, 0).stats.clone();
    println!(
        "== rank 0 moved {:.1} MB through the fabric ({} msgs)",
        s0.bytes_sent as f64 / 1e6,
        s0.msgs_sent
    );
}
