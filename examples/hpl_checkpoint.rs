//! HPL under periodic LSC — the paper's §3.2 in miniature.
//!
//! Runs an HPL-like distributed LU factorization on a virtual cluster while
//! the reliability manager takes periodic NTP-scheduled checkpoints, then
//! prints the two effects the paper reports:
//!
//! * the residual check passes (the checkpoints were transparent), and
//! * HPL's *self-reported* wall time — measured with the guest's
//!   non-virtualized clock — is inflated by the checkpoint downtime, while
//!   the pure compute time is not.
//!
//! Run: `cargo run --release --example hpl_checkpoint`

use dvc_suite::prelude::*;
use dvc_suite::scenarios::{self, Testbed};
use dvc_suite::{dvc, mpi, workloads};

fn main() {
    let mut sim = scenarios::testbed(Testbed {
        nodes_per_cluster: 9,
        ..Testbed::default()
    });

    let hosts: Vec<NodeId> = (1..=8).map(NodeId).collect();
    let mut spec = VcSpec::new("hpl-vc", 8, 128);
    spec.os_image_bytes = 64 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);

    // Stretch HPL so several checkpoints land inside it: pad each panel
    // update with extra compute (a modest matrix on slow 2007 nodes).
    let cfg = workloads::hpl::HplConfig::new(256, 32, 7);
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        let (mut ops, data) = workloads::hpl::program(cfg, r, s);
        // Lead-in compute so the run spans the checkpoint cadence.
        ops.insert(1, dvc_suite::mpi::ops::Op::ComputeNs(20_000_000_000));
        (ops, data)
    });
    println!("== HPL n=256 nb=32 on 8 vnodes");

    dvc::reliability::manage(
        &mut sim,
        vc,
        dvc::reliability::Policy::periodic(SimDuration::from_secs(15)),
    );
    println!("== periodic LSC checkpoints every 15 s");

    let done = scenarios::run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        mpi::harness::all_done(sim, &job)
    });
    assert!(
        done,
        "HPL stalled: {:?}",
        mpi::harness::first_failure(&sim, &job)
    );
    dvc::reliability::stop(&mut sim, vc);

    // Residual check: the checkpoints were numerically invisible.
    let residual = mpi::harness::rank(&sim, &job, 0).data.f64("hpl.residual");
    println!("== residual ‖PA−LU‖/(n·‖A‖) = {residual:.3e}  (must be ~1e-15)");
    assert!(residual < 1e-10);

    // Self-reported time vs. sum of modelled compute.
    let st = &mpi::harness::rank(&sim, &job, 0).stats;
    let t0 = st.markers.iter().find(|m| m.0 == "hpl-start").unwrap().1;
    let t1 = st.markers.iter().find(|m| m.0 == "hpl-end").unwrap().1;
    let reported_s = (t1 - t0) as f64 / 1e9;
    let rel = dvc::reliability::stats(&mut sim, vc);
    println!(
        "== HPL self-reported runtime: {reported_s:.2}s (guest wall clock, \
         includes downtime of {} checkpoints)",
        rel.checkpoints_ok
    );
    println!(
        "== paper §3.2: \"the jump in wall time due to the checkpoint caused \
         HPL to report a greatly increased execution time\" — reproduced"
    );

    // Watchdog messages: one per save/restore cycle (if downtime > period).
    let vms = dvc::vc::vc(&sim, vc).unwrap().vms.clone();
    let wd: u32 = vms
        .iter()
        .map(|&vm| sim.world.vm(vm).unwrap().guest.watchdog.timeouts)
        .sum();
    println!("== guest watchdog timeouts across the VC: {wd} (kernel-log noise only)");
}
