//! Chaos drill: the failure-aware checkpoint pipeline versus everything
//! at once, in one seeded, replayable run.
//!
//! A 4-vnode ring job runs under the hardened reliability policy while a
//! [`FaultPlan`] injects a compound schedule: steady storage/control/image
//! faults, a 2-minute NTP outage with a clock step mid-way, a storage
//! brownout, a control partition of one member — and one VC host simply
//! crashes. The job finishes anyway, with verified data; the fault
//! timeline below is reconstructed from the simulation trace, so the whole
//! incident is auditable after the fact.
//!
//! Run: `cargo run --release --example chaos_drill`

use dvc_suite::prelude::*;
use dvc_suite::scenarios::{self, Testbed};
use dvc_suite::sim_core::trace::Trace;
use dvc_suite::sim_core::FaultPlan;
use dvc_suite::{cluster, dvc, mpi, workloads};

fn main() {
    let seed = 1337;
    let mut sim = scenarios::testbed(Testbed {
        nodes_per_cluster: 11,
        seed,
        ..Testbed::default()
    });
    sim.trace = Trace::enabled(4096).with_categories(&["fault", "rel", "lsc"]);

    let hosts: Vec<NodeId> = (1..=4).map(NodeId).collect();
    let mut spec = VcSpec::new("drill-vc", 4, 64);
    spec.os_image_bytes = 32 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc = scenarios::provision_and_wait(&mut sim, spec, hosts);
    println!("== drill VC up on nodes 1-4 at t={}", sim.now());

    let cfg = workloads::ring::RingConfig {
        payload_len: 1024,
        iters: 1200,
        compute_ns: 200_000_000,
    };
    let job = scenarios::launch_on_vc(&mut sim, vc, move |r, s| {
        workloads::ring::program(cfg, r, s)
    });
    println!("== 4-rank ring job launched (~250 s of work)");

    // The compound fault schedule, anchored 20 s in (job steady state).
    let t0 = sim.now() + SimDuration::from_secs(20);
    let rel = |s: f64| t0 + SimDuration::from_secs_f64(s);
    let mut plan = FaultPlan::new(seed);
    plan.steady("storage.fail", 0.1);
    plan.steady("control.drop", 0.05);
    plan.steady("image.corrupt", 0.2);
    plan.window("ntp.outage", None, rel(30.0), rel(150.0), 1.0);
    plan.window("clock.step", Some(2), rel(70.0), rel(70.0), 4.0);
    plan.window("storage.brownout", None, rel(40.0), rel(70.0), 0.4);
    plan.window("control.partition", Some(3), rel(95.0), rel(101.0), 1.0);
    cluster::faults::install_fault_plan(&mut sim, plan);
    println!("== fault plan installed (seed {seed}): the next ~3 minutes will be rough");

    // The full hardened pipeline: verify-on-save, retries, abort-and-re-arm,
    // clock-free degradation, intact-generation fallback restores.
    dvc::reliability::manage(
        &mut sim,
        vc,
        dvc::reliability::Policy::hardened(SimDuration::from_secs(45)),
    );

    // And, on top of everything, a host dies outright.
    let crash_at = t0 + SimDuration::from_secs(110);
    sim.schedule_at(crash_at, |sim| {
        println!("== t={}: node 4 crashes", sim.now());
        cluster::failure::crash_node(sim, NodeId(4));
    });

    let done = scenarios::run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        mpi::harness::all_done(sim, &job)
    });

    // --- the incident timeline, from the trace ---------------------------
    println!("\n== fault timeline (from the simulation trace):");
    let mut ntp_suppressed = 0u64;
    for r in sim.trace.in_category("fault") {
        // The outage spams one record per unanswered poll; summarize those.
        if r.message.contains("ntp request") {
            ntp_suppressed += 1;
            continue;
        }
        println!("   [{}] {}", r.time, r.message);
    }
    if ntp_suppressed > 0 {
        println!("   (+ {ntp_suppressed} unanswered NTP polls during the outage)");
    }
    println!("== reliability events:");
    for r in sim.trace.in_category("rel") {
        println!("   [{}] {}", r.time, r.message);
    }
    let injected: Vec<String> = sim
        .world
        .faults
        .injected()
        .map(|(k, n)| format!("{k}: {n}"))
        .collect();
    println!("== faults injected: {}", injected.join(", "));

    // --- verdict -----------------------------------------------------------
    assert!(
        done,
        "job did not finish: {:?}",
        mpi::harness::first_failure(&sim, &job)
    );
    for r in 0..job.size {
        assert!(workloads::ring::ring_ok(
            &mpi::harness::rank(&sim, &job, r).data
        ));
    }
    let st = dvc::reliability::stats(&mut sim, vc);
    println!(
        "== job finished at t={} with data verified: {} checkpoints ok, {} failed, \
         {} in clock-free degraded mode, {} restore(s)",
        sim.now(),
        st.checkpoints_ok,
        st.checkpoints_failed,
        st.degraded_checkpoints,
        st.restores
    );
    println!("== replay me: same seed, same faults, same timeline, same verdict");
}
