//! # dvc-suite
//!
//! Facade crate for the Dynamic Virtual Clustering (DVC) reproduction —
//! *Increasing Reliability through Dynamic Virtual Clustering* (Emeneker &
//! Stanzione, IEEE CLUSTER 2007) — rebuilt as a deterministic simulation.
//!
//! Layer map (bottom → top):
//!
//! | crate | role |
//! |---|---|
//! | [`sim_core`] | deterministic discrete-event engine, RNG streams, stats |
//! | [`timebase`] | drifting hardware clocks + NTP discipline |
//! | [`net`] | switched fabric, UDP, and a full TCP implementation |
//! | [`vmm`] | Xen-like domains: snapshot/restore, watchdog, overhead |
//! | [`cluster`] | nodes, shared storage, control plane, failures, RM |
//! | [`mpi`] | rank runtime + collectives over guest TCP |
//! | [`workloads`] | HPL-like LU, PTRANS-like transpose, STREAM, ring |
//! | [`dvc`] | **the contribution**: virtual clusters + LSC + reliability |
//!
//! The [`scenarios`] module assembles ready-made testbeds so examples and
//! integration tests read like the paper's experiment descriptions.

pub use dvc_cluster as cluster;
pub use dvc_core as dvc;
pub use dvc_mpi as mpi;
pub use dvc_net as net;
pub use dvc_sim_core as sim_core;
pub use dvc_time as timebase;
pub use dvc_vmm as vmm;
pub use dvc_workloads as workloads;

/// Commonly used items, glob-importable.
pub mod prelude {
    pub use dvc_cluster::node::NodeId;
    pub use dvc_cluster::world::{ClusterBuilder, ClusterWorld};
    pub use dvc_core::lsc::{LscMethod, LscOutcome};
    pub use dvc_core::vc::{VcId, VcSpec};
    pub use dvc_mpi::harness::MpiJob;
    pub use dvc_sim_core::{Sim, SimDuration, SimTime};
}

pub mod scenarios {
    //! Ready-made testbeds and job launchers.

    use crate::prelude::*;
    use dvc_cluster::ntp;
    use dvc_mpi::data::RankData;
    use dvc_mpi::harness;
    use dvc_mpi::ops::Op;
    use dvc_sim_core::Sim;

    /// Testbed shape.
    #[derive(Clone, Copy, Debug)]
    pub struct Testbed {
        pub clusters: usize,
        pub nodes_per_cluster: usize,
        pub seed: u64,
        /// Guest TCP data-retry budget (DESIGN.md §2 calibration).
        pub tcp_retries: u32,
        /// Boot-time clock error bound, ms (ntpdate-stepped clocks: small).
        pub clock_offset_ms: f64,
    }

    impl Default for Testbed {
        fn default() -> Self {
            Testbed {
                clusters: 1,
                nodes_per_cluster: 8,
                seed: 42,
                tcp_retries: 4,
                clock_offset_ms: 5.0,
            }
        }
    }

    /// Build the world and start NTP on it.
    pub fn testbed(t: Testbed) -> Sim<ClusterWorld> {
        let mut sim = Sim::new(
            ClusterBuilder::new()
                .clusters(t.clusters)
                .nodes_per_cluster(t.nodes_per_cluster)
                .tweak(|c| {
                    c.guest_tcp.max_data_retries = t.tcp_retries;
                    c.clock_max_offset_ms = t.clock_offset_ms;
                })
                .build(t.seed),
            t.seed,
        );
        ntp::start_ntp(&mut sim, SimDuration::from_secs(4));
        sim
    }

    /// Provision a VC on `hosts` and run the sim until it is up.
    pub fn provision_and_wait(
        sim: &mut Sim<ClusterWorld>,
        spec: VcSpec,
        hosts: Vec<NodeId>,
    ) -> VcId {
        let id = dvc_core::vc::provision_vc(sim, spec, hosts, |_s, _id| {});
        while dvc_core::vc::vc(sim, id).map(|v| v.state) != Some(dvc_core::vc::VcState::Up) {
            assert!(sim.step(), "provisioning stalled");
        }
        id
    }

    /// Launch `program` on a VC's vnodes (one rank per vnode).
    pub fn launch_on_vc(
        sim: &mut Sim<ClusterWorld>,
        vc: VcId,
        program: impl Fn(usize, usize) -> (Vec<Op>, RankData),
    ) -> MpiJob {
        let vms = dvc_core::vc::vc(sim, vc).expect("vc").vms.clone();
        harness::launch_on_vms(sim, &vms, program)
    }

    /// Step the sim until `pred`, the queue drains, or `horizon` passes.
    pub fn run_until(
        sim: &mut Sim<ClusterWorld>,
        horizon: SimTime,
        mut pred: impl FnMut(&mut Sim<ClusterWorld>) -> bool,
    ) -> bool {
        while !pred(sim) {
            if sim.now() > horizon || !sim.step() {
                return pred(sim);
            }
        }
        true
    }
}
