//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of proptest the workspace's property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `any::<T>()`,
//! numeric-range and tuple strategies, `prop::collection::vec`, and
//! `prop::sample::Index`, plus `prop_map`/`prop_filter` combinators.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking** — a failing case reports its case number and values.
//! * **Deterministic seeding** — cases derive from a fixed per-test seed
//!   (FNV of the test path), so failures reproduce without an env var.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for &b in test_path.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ (((case as u64) << 32) | 0x9E37),
            ))
        }
    }

    /// Generates values of `Self::Value`. Object-safe so `prop_oneof!` can
    /// erase heterogeneous strategies into `BoxedStrategy`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence);
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct OneOf<V> {
        pub(crate) options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.0.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident/$i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.gen::<u64>() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Full bit-pattern floats (NaN/inf included), like upstream's
            // any::<f64>() edge-case generation; tests filter what they
            // cannot tolerate.
            f64::from_bits(rng.0.gen::<u64>())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.0.gen::<u32>())
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::{Arbitrary, TestRng};
    use rand::Rng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.0.gen())
        }
    }
}

pub mod test_runner {
    /// Subset of upstream's config: only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Failure raised by `prop_assert!` family; carries the rendered message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Namespace mirror of upstream's `prop::` paths.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::strategy::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __described = [
                    $(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+
                ].join(", ");
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  with: {}",
                        stringify!($name),
                        __case,
                        config.cases,
                        e,
                        __described
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Sample {
        Int(u64),
        Flag(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..255, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn tuples_and_index(pair in (1u64..100, 0u64..50), idx in any::<prop::sample::Index>()) {
            prop_assert!(pair.0 >= 1 && pair.1 < 50);
            let i = idx.index(10);
            prop_assert!(i < 10);
        }

        #[test]
        fn oneof_map_filter(
            s in prop_oneof![
                (1u64..100).prop_filter("even only", |x| x % 2 == 0).prop_map(Sample::Int),
                any::<bool>().prop_map(Sample::Flag),
            ]
        ) {
            match s {
                Sample::Int(x) => prop_assert!(x % 2 == 0, "odd survived the filter: {x}"),
                Sample::Flag(_) => {}
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{Strategy, TestRng};
        let a: Vec<u64> = (0..5)
            .map(|c| (0u64..1000).generate(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| (0u64..1000).generate(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
