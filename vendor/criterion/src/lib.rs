//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/struct surface the workspace's benches compile against
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `Bencher`, `BatchSize`, `Throughput`). Instead of criterion's statistical
//! sampling it runs each benchmark `sample_size` times and reports the mean
//! wall time (and derived throughput). Good enough to smoke-run `cargo bench`
//! offline; not a precision measurement harness.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted and ignored (every iteration
/// gets a fresh input either way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Re-export position matches upstream (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if !mean.is_zero() => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{}: {:?}/iter over {} iters{}",
            self.name, id, mean, b.iters, rate
        );
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 64],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn macros_expand() {
        demo_group();
    }
}
