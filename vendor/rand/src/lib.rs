//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `rand 0.8`: the `RngCore` / `Rng` /
//! `SeedableRng` traits and `rngs::SmallRng` (implemented as xoshiro256++,
//! seeded through SplitMix64 exactly like the upstream `seed_from_u64`).
//! Determinism is the only contract the simulation needs; statistical quality
//! of xoshiro256++ matches upstream `SmallRng` (which uses the same family).
//!
//! Only the surface this repo actually calls is provided. If a new call site
//! needs more of the API, extend this shim rather than adding a registry
//! dependency.

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce (stands in for `Standard: Distribution`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1), like upstream.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range` (stands in for `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = Standard::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_impls!(f32, f64);

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        let u: f64 = Standard::sample_standard(self);
        u < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — same generator family upstream `SmallRng` uses on
    /// 64-bit targets. Not cryptographically secure; plenty for simulation.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = r.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let z: f64 = r.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_hit_endpoints() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = r.gen_range(10u64..12);
            assert!(v == 10 || v == 11);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unsized_rng_callable_through_ref() {
        fn takes_dyn<R: Rng + ?Sized>(r: &mut R) -> f64 {
            r.gen_range(0.0f64..1.0)
        }
        let mut r = SmallRng::seed_from_u64(1);
        let v = takes_dyn(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
