//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `bytes 1.x` this workspace uses: cheaply-clonable
//! immutable `Bytes` (shared `Arc<[u8]>` plus a view window), a growable
//! `BytesMut` builder, and the `Buf`/`BufMut` cursor traits for the little-
//! endian accessors the wire formats need. Semantics match upstream for the
//! covered surface (O(1) clone/slice, `Buf` getters consume from the front,
//! getters panic on underflow).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply clonable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
            start: 0,
            end: slice.len(),
        }
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
            start: 0,
            end: slice.len(),
        }
    }

    /// O(1) sub-view; panics if the range is out of bounds (like upstream).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "Bytes::slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off the tail at `at`, leaving `self` as the head.
    pub fn split_off(&mut self, at: usize) -> Self {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn consume(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "Bytes: advance past end of buffer");
        let start = self.start;
        self.start += n;
        &self.data[start..start + n]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…(+{})", self.len() - 32)?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into `Bytes`.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            buf: self.buf.split_off(at),
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor: getters consume from the front, panicking on underflow.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn take_front(&mut self, n: usize) -> &[u8];

    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_front(4).try_into().unwrap())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_front(8).try_into().unwrap())
    }
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_front(8).try_into().unwrap())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_front(8).try_into().unwrap())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn take_front(&mut self, n: usize) -> &[u8] {
        self.consume(n)
    }
}

/// Write cursor: little-endian appenders.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut b = BytesMut::with_capacity(29);
        b.put_u8(7);
        b.put_u32_le(0xAABBCCDD);
        b.put_u64_le(42);
        b.put_i64_le(-9);
        b.put_f64_le(2.5);
        let mut f = b.freeze();
        assert_eq!(f.len(), 29);
        assert_eq!(f.get_u8(), 7);
        assert_eq!(f.get_u32_le(), 0xAABBCCDD);
        assert_eq!(f.get_u64_le(), 42);
        assert_eq!(f.get_i64_le(), -9);
        assert_eq!(f.get_f64_le(), 2.5);
        assert!(f.is_empty());
    }

    #[test]
    fn slices_are_views() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(&b.slice(2..5)[..], &[2, 3, 4]);
        assert_eq!(&b.slice(..3)[..], &[0, 1, 2]);
        assert_eq!(&b.slice(6..)[..], &[6, 7]);
        let s = b.slice(2..6).slice(1..3);
        assert_eq!(&s[..], &[3, 4]);
        assert_eq!(s.to_vec(), vec![3, 4]);
    }

    #[test]
    fn getters_consume_and_len_tracks() {
        let mut b = Bytes::from(vec![1u8, 0, 0, 0, 0, 0, 0, 0, 0, 9]);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.len(), 9);
        assert_eq!(b.get_u64_le(), 0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.get_u8(), 9);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u64_le();
    }

    #[test]
    fn split_off_splits_view() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let tail = b.split_off(2);
        assert_eq!(&b[..], &[0, 1]);
        assert_eq!(&tail[..], &[2, 3, 4]);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, Bytes::new());
        assert!(format!("{a:?}").contains("x01"));
    }
}
